package chunk

import (
	"fmt"
	"sync"
)

// Pool is the head node's global job pool, generated from the index
// (one job per chunk). It implements the paper's assignment policy:
//
//   - a requesting cluster first receives groups of *consecutive* jobs
//     from files stored at its own site, so slaves can read
//     sequentially ("the selection of consecutive jobs is an important
//     optimization"),
//   - once a cluster's local jobs are exhausted it is given remote
//     jobs (work stealing), chosen from the remote file that the
//     fewest readers are currently processing, to minimize file
//     contention among clusters,
//   - assigned jobs are tracked until completion so that jobs held by
//     a failed cluster can be requeued (fault-tolerance extension).
type Pool struct {
	mu   sync.Mutex
	idx  *Index
	opts PoolOptions

	// pending[f] is the sorted list of unassigned chunk IDs in file f.
	pending [][]int32
	// readers[f] counts outstanding (assigned, uncompleted) jobs in
	// file f; the min-contention heuristic uses it.
	readers []int
	// assigned maps an outstanding chunk ID to the site holding it.
	assigned map[int32]string
	// remaining counts pending + assigned jobs.
	remaining int

	// resident[site] is the latest reported set of chunk IDs warm in
	// that site's chunk caches. The steal heuristic prefers granting a
	// thief chunks that are cold at the victim, leaving warm chunks for
	// the victim's own (cheap, cache-hit) processing.
	resident map[string]map[int32]bool
	// stealsCold / stealsWarm count stolen grants by whether the chunk
	// was cold or warm in the victim's reported cache set.
	stealsCold int
	stealsWarm int
	// homeWarm / homeCold count local grants the same way against the
	// requester's own resident set — how often placement replays chunks
	// the site already holds (cache or staged burst buffer).
	homeWarm int
	homeCold int
}

// PoolOptions tune the assignment policy.
type PoolOptions struct {
	// Scatter disables the consecutive-job grouping optimization:
	// grants are spread across a file instead of taken as a
	// consecutive run. Exists for the ablation quantifying what
	// consecutive assignment buys (sequential storage access).
	Scatter bool
}

// NewPool builds a pool from the index with the default policy.
func NewPool(idx *Index) *Pool { return NewPoolWith(idx, PoolOptions{}) }

// NewPoolWith builds a pool with explicit policy options.
func NewPoolWith(idx *Index, opts PoolOptions) *Pool {
	p := &Pool{
		idx:      idx,
		opts:     opts,
		pending:  make([][]int32, len(idx.Files)),
		readers:  make([]int, len(idx.Files)),
		assigned: make(map[int32]string),
		resident: make(map[string]map[int32]bool),
	}
	for _, c := range idx.Chunks {
		p.pending[c.File] = append(p.pending[c.File], c.ID)
		p.remaining++
	}
	return p
}

// Index returns the index the pool was built from.
func (p *Pool) Index() *Index { return p.idx }

// Assignment is one granted job plus its stealing status.
type Assignment struct {
	Chunk  Chunk
	Stolen bool
}

// Acquire grants up to max jobs to the requesting site. Local jobs
// (data at the requester's site) are preferred; when none remain,
// remote jobs are granted from the least-contended remote file and
// marked stolen. It returns nil when no jobs remain unassigned.
func (p *Pool) Acquire(site string, max int) []Assignment {
	if max <= 0 {
		max = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	// Pass 1: local files with pending jobs. Among them, prefer a file
	// whose next pending chunk is already warm at the requesting site
	// (chunk cache or staged burst buffer): on iteration N+1 this
	// replays iteration N's placement, so the resident bytes are the
	// ones actually granted instead of aging out unused. Falls back to
	// the first local file when nothing pending is warm.
	firstLocal := -1
	warm := p.resident[site]
	for f := range p.pending {
		if p.idx.Files[f].Site != site || len(p.pending[f]) == 0 {
			continue
		}
		if firstLocal == -1 {
			firstLocal = f
		}
		if warm[p.pending[f][0]] {
			return p.takeLocked(f, site, max, false)
		}
	}
	if firstLocal != -1 {
		return p.takeLocked(firstLocal, site, max, false)
	}
	// Pass 2: remote file with the minimum number of active readers.
	best := -1
	for f := range p.pending {
		if p.idx.Files[f].Site == site || len(p.pending[f]) == 0 {
			continue
		}
		if best == -1 || p.readers[f] < p.readers[best] {
			best = f
		}
	}
	if best == -1 {
		return nil
	}
	return p.takeLocked(best, site, max, true)
}

// takeLocked removes up to max chunk IDs from file f's pending list
// and records the assignment. The default policy takes a consecutive
// run from the front (the paper's sequential-read optimization); the
// Scatter ablation spreads the grant across the file instead.
func (p *Pool) takeLocked(f int, site string, max int, stolen bool) []Assignment {
	ids := p.pending[f]
	var granted []int32
	if p.opts.Scatter {
		n := max
		if n > len(ids) {
			n = len(ids)
		}
		stride := len(ids) / n
		if stride < 1 {
			stride = 1
		}
		taken := make([]bool, len(ids))
		for i := 0; i < len(ids) && len(granted) < n; i += stride {
			taken[i] = true
			granted = append(granted, ids[i])
		}
		for i := 0; i < len(ids) && len(granted) < n; i++ {
			if !taken[i] {
				taken[i] = true
				granted = append(granted, ids[i])
			}
		}
		rest := make([]int32, 0, len(ids)-len(granted))
		for i, id := range ids {
			if !taken[i] {
				rest = append(rest, id)
			}
		}
		p.pending[f] = rest
	} else {
		// Consecutive run from the front — except for stolen grants,
		// where the run starts at the first chunk that is cold in the
		// victim's cache and extends only through cold chunks: warm
		// chunks stay home where they are cache hits.
		start := 0
		warm := map[int32]bool(nil)
		if stolen {
			warm = p.resident[p.idx.Files[f].Site]
			for start < len(ids) && warm[ids[start]] {
				start++
			}
			if start == len(ids) {
				start = 0 // everything warm: fall back to the front
				warm = nil
			}
		}
		n := 1
		for n < max && start+n < len(ids) && ids[start+n] == ids[start+n-1]+1 &&
			!warm[ids[start+n]] {
			n++
		}
		granted = ids[start : start+n]
		p.pending[f] = append(ids[:start:start], ids[start+n:]...)
	}
	victim := p.resident[p.idx.Files[f].Site]
	out := make([]Assignment, 0, len(granted))
	for _, id := range granted {
		p.assigned[id] = site
		p.readers[f]++
		if stolen {
			if victim[id] {
				p.stealsWarm++
			} else {
				p.stealsCold++
			}
		} else if victim[id] {
			p.homeWarm++
		} else {
			p.homeCold++
		}
		out = append(out, Assignment{Chunk: p.idx.Chunks[id], Stolen: stolen})
	}
	return out
}

// SetResident replaces the reported set of cache-resident chunk IDs
// for site. Slaves report residency with each job request; the head
// folds the per-cluster union here so stolen grants can steer away
// from chunks the victim already has warm. Nil or empty clears it.
func (p *Pool) SetResident(site string, ids []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(ids) == 0 {
		delete(p.resident, site)
		return
	}
	set := make(map[int32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	p.resident[site] = set
}

// StealStats reports how many stolen grants took chunks that were cold
// vs. warm in the victim site's reported cache set.
func (p *Pool) StealStats() (cold, warm int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stealsCold, p.stealsWarm
}

// HomeStats reports how many local grants handed a site chunks that
// were cold vs. warm in its own reported resident set.
func (p *Pool) HomeStats() (cold, warm int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.homeCold, p.homeWarm
}

// Complete acknowledges finished jobs, releasing their reader counts.
// Unknown or already-completed IDs are an error (double completion
// indicates a protocol bug).
func (p *Pool) Complete(ids []int32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if _, ok := p.assigned[id]; !ok {
			return fmt.Errorf("chunk: completion of unassigned job %d", id)
		}
		delete(p.assigned, id)
		p.readers[p.idx.Chunks[id].File]--
		p.remaining--
	}
	return nil
}

// RequeueSite returns every outstanding job assigned to site to the
// pending lists (used when a cluster dies). It reports how many jobs
// were requeued.
func (p *Pool) RequeueSite(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for id, s := range p.assigned {
		if s != site {
			continue
		}
		delete(p.assigned, id)
		f := p.idx.Chunks[id].File
		p.readers[f]--
		p.pending[f] = insertSorted(p.pending[f], id)
		n++
	}
	return n
}

// Remaining reports pending + outstanding jobs.
func (p *Pool) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.remaining
}

// Done reports whether every job has been completed.
func (p *Pool) Done() bool { return p.Remaining() == 0 }

// PendingAt reports how many unassigned jobs have their data at site.
func (p *Pool) PendingAt(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for f := range p.pending {
		if p.idx.Files[f].Site == site {
			n += len(p.pending[f])
		}
	}
	return n
}

func insertSorted(ids []int32, id int32) []int32 {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ids = append(ids, 0)
	copy(ids[lo+1:], ids[lo:])
	ids[lo] = id
	return ids
}
