package chunk

import (
	"bytes"
	"testing"

	"cloudburst/internal/store"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	local, cloud := store.NewMem(), store.NewMem()
	stores := map[string]store.Store{"local": local, "cloud": cloud}
	var files []FileMeta
	for i := 0; i < 16; i++ {
		name := string(rune('a'+i)) + ".bin"
		st, site := local, "local"
		if i%2 == 1 {
			st, site = cloud, "cloud"
		}
		st.Put(name, make([]byte, 1<<20))
		files = append(files, FileMeta{Name: name, Site: site})
	}
	idx, err := Build(stores, files, BuildOptions{RecordSize: 16, ChunkBytes: 16 << 10})
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkPoolAcquireComplete measures the head's job-pool hot path:
// a full drain with interleaved completions from two sites.
func BenchmarkPoolAcquireComplete(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPool(idx)
		sites := [...]string{"local", "cloud"}
		for !p.Done() {
			for _, site := range sites {
				grants := p.Acquire(site, 8)
				if len(grants) == 0 {
					continue
				}
				ids := make([]int32, len(grants))
				for j, g := range grants {
					ids[j] = g.Chunk.ID
				}
				if err := p.Complete(ids); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkIndexCodec measures index serialization round trips.
func BenchmarkIndexCodec(b *testing.B) {
	idx := benchIndex(b)
	var buf bytes.Buffer
	idx.WriteTo(&buf)
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := idx.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadIndex(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
