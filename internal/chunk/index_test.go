package chunk

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cloudburst/internal/store"
)

// buildTestIndex creates a two-site data set: nLocal files at "local"
// and nCloud files at "cloud", each of fileBytes bytes.
func buildTestIndex(t *testing.T, nLocal, nCloud int, fileBytes int64, recordSize int32, chunkBytes int64) (*Index, map[string]store.Store) {
	t.Helper()
	local, cloud := store.NewMem(), store.NewMem()
	stores := map[string]store.Store{"local": local, "cloud": cloud}
	var files []FileMeta
	mk := func(st *store.Mem, site string, i int) {
		name := site + "-" + string(rune('a'+i)) + ".bin"
		st.Put(name, make([]byte, fileBytes))
		files = append(files, FileMeta{Name: name, Site: site})
	}
	for i := 0; i < nLocal; i++ {
		mk(local, "local", i)
	}
	for i := 0; i < nCloud; i++ {
		mk(cloud, "cloud", i)
	}
	idx, err := Build(stores, files, BuildOptions{RecordSize: recordSize, ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	return idx, stores
}

func TestBuildBasic(t *testing.T) {
	idx, _ := buildTestIndex(t, 2, 2, 64<<10, 16, 8<<10)
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(idx.Files) != 4 {
		t.Fatalf("files = %d", len(idx.Files))
	}
	// 64 KiB / 8 KiB = 8 chunks per file.
	if len(idx.Chunks) != 32 {
		t.Fatalf("chunks = %d", len(idx.Chunks))
	}
	if idx.TotalBytes() != 4*64<<10 {
		t.Fatalf("total bytes = %d", idx.TotalBytes())
	}
	if idx.TotalUnits() != 4*64<<10/16 {
		t.Fatalf("total units = %d", idx.TotalUnits())
	}
}

func TestBuildUnevenTailChunk(t *testing.T) {
	m := store.NewMem()
	m.Put("f", make([]byte, 100)) // 10 records of 10 bytes
	idx, err := Build(map[string]store.Store{"s": m},
		[]FileMeta{{Name: "f", Site: "s"}},
		BuildOptions{RecordSize: 10, ChunkBytes: 35})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk bytes rounds down to 30 -> chunks of 30,30,30,10.
	if len(idx.Chunks) != 4 {
		t.Fatalf("chunks = %d: %+v", len(idx.Chunks), idx.Chunks)
	}
	if last := idx.Chunks[3]; last.Length != 10 || last.Units != 1 {
		t.Fatalf("tail chunk = %+v", last)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsMisalignedFile(t *testing.T) {
	m := store.NewMem()
	m.Put("f", make([]byte, 101))
	_, err := Build(map[string]store.Store{"s": m},
		[]FileMeta{{Name: "f", Site: "s"}},
		BuildOptions{RecordSize: 10, ChunkBytes: 50})
	if err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	m := store.NewMem()
	if _, err := Build(map[string]store.Store{"s": m}, nil, BuildOptions{RecordSize: 0}); err == nil {
		t.Fatal("zero record size should error")
	}
	if _, err := Build(map[string]store.Store{}, []FileMeta{{Name: "f", Site: "x"}},
		BuildOptions{RecordSize: 8, ChunkBytes: 64}); err == nil {
		t.Fatal("unknown site should error")
	}
	if _, err := Build(map[string]store.Store{"s": m}, []FileMeta{{Name: "ghost", Site: "s"}},
		BuildOptions{RecordSize: 8, ChunkBytes: 64}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	idx, _ := buildTestIndex(t, 3, 2, 128<<10, 32, 16<<10)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, idx)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index file at all"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should be rejected")
	}
}

func TestReadIndexRejectsTruncation(t *testing.T) {
	idx, _ := buildTestIndex(t, 1, 1, 32<<10, 16, 8<<10)
	var buf bytes.Buffer
	idx.WriteTo(&buf)
	full := buf.Bytes()
	for _, cut := range []int{5, 12, len(full) / 2, len(full) - 3} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	idx, _ := buildTestIndex(t, 1, 0, 32<<10, 16, 8<<10)
	cases := []func(*Index){
		func(i *Index) { i.Chunks[0].ID = 99 },
		func(i *Index) { i.Chunks[1].File = 7 },
		func(i *Index) { i.Chunks[2].Offset = -1 },
		func(i *Index) { i.Chunks[2].Length = 1<<40 + 16 },
		func(i *Index) { i.Chunks[3].Length = 17 },
		func(i *Index) { i.Chunks[3].Units = 3 },
		func(i *Index) { i.RecordSize = 0 },
	}
	for n, corrupt := range cases {
		cp := *idx
		cp.Chunks = append([]Chunk(nil), idx.Chunks...)
		corrupt(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("corruption %d not caught", n)
		}
	}
}

// Property: for random sizes, Build covers every byte exactly once
// with record-aligned chunks.
func TestBuildCoversFileProperty(t *testing.T) {
	f := func(records uint16, recSize uint8, chunkRecords uint8) bool {
		rs := int32(recSize%64) + 1
		nRec := int64(records%2000) + 1
		m := store.NewMem()
		m.Put("f", make([]byte, nRec*int64(rs)))
		idx, err := Build(map[string]store.Store{"s": m},
			[]FileMeta{{Name: "f", Site: "s"}},
			BuildOptions{RecordSize: rs, ChunkBytes: int64(chunkRecords%32+1) * int64(rs)})
		if err != nil {
			return false
		}
		if idx.Validate() != nil {
			return false
		}
		// Chunks must tile the file contiguously.
		var off int64
		for _, c := range idx.Chunks {
			if c.Offset != off {
				return false
			}
			off += c.Length
		}
		return off == nRec*int64(rs) && idx.TotalUnits() == nRec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
