package chunk

import "testing"

// drainOwnJobs acquires until site has no pending local work left,
// failing the test if anything granted along the way was stolen.
func drainOwnJobs(t *testing.T, p *Pool, site string) {
	t.Helper()
	for p.PendingAt(site) > 0 {
		for _, a := range p.Acquire(site, 8) {
			if a.Stolen {
				t.Fatalf("stole chunk %d while %s jobs remained", a.Chunk.ID, site)
			}
		}
	}
}

// cloudChunkIDs returns the chunk IDs homed at "cloud", grouped by
// file, in pending order.
func cloudChunkIDs(idx *Index) map[int32][]int32 {
	byFile := make(map[int32][]int32)
	for _, c := range idx.Chunks {
		if idx.Files[c.File].Site == "cloud" {
			byFile[c.File] = append(byFile[c.File], c.ID)
		}
	}
	return byFile
}

func TestPoolStealAvoidsVictimWarmChunks(t *testing.T) {
	p, idx := poolFixture(t)
	drainOwnJobs(t, p, "local")

	// Mark the front 3 chunks of every cloud file warm in the victim's
	// reported cache set; whichever file the steal heuristic picks, the
	// grant must start past them.
	warm := make(map[int32]bool)
	var reported []int32
	for _, ids := range cloudChunkIDs(idx) {
		for _, id := range ids[:3] {
			warm[id] = true
			reported = append(reported, id)
		}
	}
	p.SetResident("cloud", reported)

	got := p.Acquire("local", 4)
	if len(got) == 0 {
		t.Fatal("no stolen jobs granted")
	}
	for _, a := range got {
		if !a.Stolen {
			t.Fatalf("remote grant %d not marked stolen", a.Chunk.ID)
		}
		if warm[a.Chunk.ID] {
			t.Fatalf("stolen grant took chunk %d, warm in the victim's cache", a.Chunk.ID)
		}
	}
	cold, warmN := p.StealStats()
	if cold != len(got) || warmN != 0 {
		t.Fatalf("steal stats cold=%d warm=%d, want %d / 0", cold, warmN, len(got))
	}
}

func TestPoolStealAllWarmFallsBackToFront(t *testing.T) {
	p, idx := poolFixture(t)
	drainOwnJobs(t, p, "local")

	// Every cloud chunk reported warm: progress beats cache affinity, so
	// the thief still gets a grant — from the front — and the stats
	// record the warm steals.
	var all []int32
	for _, ids := range cloudChunkIDs(idx) {
		all = append(all, ids...)
	}
	p.SetResident("cloud", all)

	got := p.Acquire("local", 4)
	if len(got) == 0 {
		t.Fatal("fully-warm victim starved the thief")
	}
	for _, a := range got {
		if !a.Stolen {
			t.Fatal("remote grant not marked stolen")
		}
	}
	cold, warmN := p.StealStats()
	if warmN != len(got) || cold != 0 {
		t.Fatalf("steal stats cold=%d warm=%d, want 0 / %d", cold, warmN, len(got))
	}

	// Clearing residency (a slave whose cache emptied reports nothing)
	// returns stealing to cold-first accounting.
	p.SetResident("cloud", nil)
	more := p.Acquire("local", 2)
	if len(more) == 0 {
		t.Fatal("no further steals after residency cleared")
	}
	cold2, warm2 := p.StealStats()
	if cold2 != len(more) || warm2 != warmN {
		t.Fatalf("post-clear stats cold=%d warm=%d, want %d / %d",
			cold2, warm2, len(more), warmN)
	}
}
