package chunk

import (
	"math/rand"
	"sync"
	"testing"
)

func poolFixture(t *testing.T) (*Pool, *Index) {
	t.Helper()
	// 2 local files + 2 cloud files, 8 chunks each -> 32 jobs.
	idx, _ := buildTestIndex(t, 2, 2, 64<<10, 16, 8<<10)
	return NewPool(idx), idx
}

func TestPoolPrefersLocalJobs(t *testing.T) {
	p, idx := poolFixture(t)
	got := p.Acquire("cloud", 4)
	if len(got) != 4 {
		t.Fatalf("granted %d jobs", len(got))
	}
	for _, a := range got {
		if idx.Files[a.Chunk.File].Site != "cloud" {
			t.Fatalf("cloud request got non-cloud job %+v", a)
		}
		if a.Stolen {
			t.Fatal("local job marked stolen")
		}
	}
}

func TestPoolConsecutiveAssignment(t *testing.T) {
	p, _ := poolFixture(t)
	got := p.Acquire("local", 6)
	if len(got) != 6 {
		t.Fatalf("granted %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Chunk.ID != got[i-1].Chunk.ID+1 {
			t.Fatalf("non-consecutive grant: %d after %d", got[i].Chunk.ID, got[i-1].Chunk.ID)
		}
		if got[i].Chunk.File != got[0].Chunk.File {
			t.Fatal("grant crosses files")
		}
	}
}

func TestPoolStealsWhenLocalExhausted(t *testing.T) {
	p, idx := poolFixture(t)
	// Drain all 16 local jobs.
	drained := 0
	for drained < 16 {
		got := p.Acquire("local", 8)
		for _, a := range got {
			if a.Stolen {
				t.Fatal("stole while local jobs remained")
			}
			drained++
		}
	}
	// Next acquisition must steal from cloud.
	got := p.Acquire("local", 4)
	if len(got) == 0 {
		t.Fatal("no stolen jobs granted")
	}
	for _, a := range got {
		if !a.Stolen {
			t.Fatal("remote job not marked stolen")
		}
		if idx.Files[a.Chunk.File].Site != "cloud" {
			t.Fatal("stolen job not from cloud")
		}
	}
}

func TestPoolMinContentionHeuristic(t *testing.T) {
	p, idx := poolFixture(t)
	// Cloud takes jobs from its first file, leaving that file "busy".
	first := p.Acquire("cloud", 4)
	busyFile := first[0].Chunk.File
	// Drain local, then local steals: should pick the cloud file with
	// fewer active readers (not busyFile).
	for p.PendingAt("local") > 0 {
		p.Acquire("local", 8)
	}
	stolen := p.Acquire("local", 2)
	if len(stolen) == 0 {
		t.Fatal("no steal")
	}
	if stolen[0].Chunk.File == busyFile {
		t.Fatalf("steal picked contended file %d (sites=%v)", busyFile, idx.Files[busyFile].Site)
	}
}

func TestPoolCompleteAndDone(t *testing.T) {
	p, _ := poolFixture(t)
	var all []int32
	for {
		got := p.Acquire("local", 8)
		if len(got) == 0 {
			break
		}
		for _, a := range got {
			all = append(all, a.Chunk.ID)
		}
	}
	if len(all) != 32 {
		t.Fatalf("acquired %d jobs", len(all))
	}
	if p.Done() {
		t.Fatal("pool done before completion")
	}
	if err := p.Complete(all); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("pool not done after completing everything")
	}
	if err := p.Complete([]int32{0}); err == nil {
		t.Fatal("double completion should error")
	}
}

func TestPoolNoDoubleAssignment(t *testing.T) {
	p, _ := poolFixture(t)
	seen := make(map[int32]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, site := range []string{"local", "cloud", "local", "cloud"} {
		wg.Add(1)
		go func(site string) {
			defer wg.Done()
			for {
				got := p.Acquire(site, 3)
				if len(got) == 0 {
					return
				}
				mu.Lock()
				for _, a := range got {
					if seen[a.Chunk.ID] {
						t.Errorf("job %d assigned twice", a.Chunk.ID)
					}
					seen[a.Chunk.ID] = true
				}
				mu.Unlock()
			}
		}(site)
	}
	wg.Wait()
	if len(seen) != 32 {
		t.Fatalf("assigned %d of 32 jobs", len(seen))
	}
}

func TestPoolRequeueSite(t *testing.T) {
	p, _ := poolFixture(t)
	got := p.Acquire("local", 5)
	if len(got) != 5 {
		t.Fatalf("granted %d", len(got))
	}
	if n := p.RequeueSite("local"); n != 5 {
		t.Fatalf("requeued %d, want 5", n)
	}
	// The same jobs must be grantable again.
	again := p.Acquire("local", 5)
	if len(again) != 5 {
		t.Fatalf("re-granted %d", len(again))
	}
	ids := map[int32]bool{}
	for _, a := range got {
		ids[a.Chunk.ID] = true
	}
	for _, a := range again {
		if !ids[a.Chunk.ID] {
			t.Fatalf("unexpected job %d after requeue", a.Chunk.ID)
		}
	}
	if n := p.RequeueSite("mars"); n != 0 {
		t.Fatalf("requeue of unknown site = %d", n)
	}
}

// Conservation invariant under random concurrent acquire/complete
// cycles: every job is completed exactly once, and the pool drains.
func TestPoolConservationRandomized(t *testing.T) {
	idx, _ := buildTestIndex(t, 3, 3, 64<<10, 16, 4<<10) // 96 jobs
	p := NewPool(idx)
	var mu sync.Mutex
	completed := make(map[int32]int)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			site := "local"
			if w%2 == 1 {
				site = "cloud"
			}
			for {
				got := p.Acquire(site, rng.Intn(5)+1)
				if len(got) == 0 {
					return
				}
				ids := make([]int32, len(got))
				for i, a := range got {
					ids[i] = a.Chunk.ID
				}
				if err := p.Complete(ids); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, id := range ids {
					completed[id]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if !p.Done() {
		t.Fatalf("pool not drained: remaining=%d", p.Remaining())
	}
	if len(completed) != 96 {
		t.Fatalf("completed %d of 96", len(completed))
	}
	for id, n := range completed {
		if n != 1 {
			t.Fatalf("job %d completed %d times", id, n)
		}
	}
}

func TestInsertSorted(t *testing.T) {
	ids := []int32{2, 5, 9}
	ids = insertSorted(ids, 7)
	ids = insertSorted(ids, 1)
	ids = insertSorted(ids, 11)
	want := []int32{1, 2, 5, 7, 9, 11}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v want %v", ids, want)
		}
	}
}

func TestPoolScatterSpreadsGrants(t *testing.T) {
	idx, _ := buildTestIndex(t, 1, 0, 64<<10, 16, 2<<10) // 1 file, 32 chunks
	p := NewPoolWith(idx, PoolOptions{Scatter: true})
	got := p.Acquire("local", 4)
	if len(got) != 4 {
		t.Fatalf("granted %d", len(got))
	}
	consecutive := 0
	for i := 1; i < len(got); i++ {
		if got[i].Chunk.ID == got[i-1].Chunk.ID+1 {
			consecutive++
		}
	}
	if consecutive == len(got)-1 {
		t.Fatalf("scatter produced a fully consecutive grant: %+v", got)
	}
	// Scattered pools still conserve jobs.
	seen := map[int32]bool{}
	for _, a := range got {
		seen[a.Chunk.ID] = true
	}
	for {
		more := p.Acquire("local", 5)
		if len(more) == 0 {
			break
		}
		for _, a := range more {
			if seen[a.Chunk.ID] {
				t.Fatalf("job %d granted twice under scatter", a.Chunk.ID)
			}
			seen[a.Chunk.ID] = true
		}
	}
	if len(seen) != 32 {
		t.Fatalf("scatter lost jobs: %d of 32", len(seen))
	}
}

func TestPoolScatterSmallRemainder(t *testing.T) {
	idx, _ := buildTestIndex(t, 1, 0, 8<<10, 16, 2<<10) // 4 chunks
	p := NewPoolWith(idx, PoolOptions{Scatter: true})
	if got := p.Acquire("local", 10); len(got) != 4 {
		t.Fatalf("granted %d of 4", len(got))
	}
}
