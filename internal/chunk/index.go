// Package chunk implements the paper's data organization (Section
// III-B): a data set is divided into files (distributable across
// sites), files into logical chunks (the unit of job assignment, sized
// to compute-node memory), and chunks into data units (the smallest
// atomically processable element, grouped to fit processor caches).
//
// A binary index file records, for every chunk, its file, starting
// offset, size, and unit count; the head node reads the index at
// startup to generate the job pool (one job per chunk).
package chunk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cloudburst/internal/store"
)

// FileMeta describes one data file of the data set.
type FileMeta struct {
	// Name is the object name inside its site's store.
	Name string
	// Size is the file length in bytes.
	Size int64
	// Site names the site whose store holds the file ("local", "cloud").
	Site string
}

// Chunk is one logical chunk — one job.
type Chunk struct {
	// ID is the global chunk id, dense from 0.
	ID int32
	// File indexes into Index.Files.
	File int32
	// Offset is the chunk's starting byte inside the file.
	Offset int64
	// Length is the chunk's byte length (a multiple of the record size).
	Length int64
	// Units is the number of data units in the chunk.
	Units int64
}

// Index is the data set's metadata: the record (unit) size, the files,
// and every chunk.
type Index struct {
	// RecordSize is the fixed byte size of one data unit.
	RecordSize int32
	Files      []FileMeta
	Chunks     []Chunk
}

// BuildOptions configure index generation.
type BuildOptions struct {
	// RecordSize is the data unit size in bytes (required, > 0).
	RecordSize int32
	// ChunkBytes is the target chunk size; rounded down to a multiple
	// of RecordSize, minimum one record.
	ChunkBytes int64
}

// Build scans the named files in their stores and produces an Index.
// files lists (name, site) in order; sizes are read from the matching
// store via the stores map (site -> store).
func Build(stores map[string]store.Store, files []FileMeta, opts BuildOptions) (*Index, error) {
	if opts.RecordSize <= 0 {
		return nil, fmt.Errorf("chunk: record size must be positive, got %d", opts.RecordSize)
	}
	chunkBytes := opts.ChunkBytes - opts.ChunkBytes%int64(opts.RecordSize)
	if chunkBytes < int64(opts.RecordSize) {
		chunkBytes = int64(opts.RecordSize)
	}
	idx := &Index{RecordSize: opts.RecordSize}
	var id int32
	for _, fm := range files {
		st, ok := stores[fm.Site]
		if !ok {
			return nil, fmt.Errorf("chunk: no store for site %q", fm.Site)
		}
		size, err := st.Size(fm.Name)
		if err != nil {
			return nil, fmt.Errorf("chunk: stat %s@%s: %w", fm.Name, fm.Site, err)
		}
		if size%int64(opts.RecordSize) != 0 {
			return nil, fmt.Errorf("chunk: %s size %d not a multiple of record size %d",
				fm.Name, size, opts.RecordSize)
		}
		fm.Size = size
		fileIdx := int32(len(idx.Files))
		idx.Files = append(idx.Files, fm)
		for off := int64(0); off < size; off += chunkBytes {
			length := chunkBytes
			if off+length > size {
				length = size - off
			}
			idx.Chunks = append(idx.Chunks, Chunk{
				ID: id, File: fileIdx, Offset: off, Length: length,
				Units: length / int64(opts.RecordSize),
			})
			id++
		}
	}
	return idx, nil
}

// TotalUnits sums the data units across all chunks.
func (idx *Index) TotalUnits() int64 {
	var n int64
	for _, c := range idx.Chunks {
		n += c.Units
	}
	return n
}

// TotalBytes sums file sizes.
func (idx *Index) TotalBytes() int64 {
	var n int64
	for _, f := range idx.Files {
		n += f.Size
	}
	return n
}

// Validate checks internal consistency: dense ids, in-range file
// references, in-bounds chunks, and record alignment.
func (idx *Index) Validate() error {
	if idx.RecordSize <= 0 {
		return errors.New("chunk: non-positive record size")
	}
	for i, c := range idx.Chunks {
		if c.ID != int32(i) {
			return fmt.Errorf("chunk: id %d at position %d", c.ID, i)
		}
		if c.File < 0 || int(c.File) >= len(idx.Files) {
			return fmt.Errorf("chunk %d: file index %d out of range", c.ID, c.File)
		}
		f := idx.Files[c.File]
		if c.Offset < 0 || c.Length <= 0 || c.Offset+c.Length > f.Size {
			return fmt.Errorf("chunk %d: range [%d,%d) outside file %s (%d bytes)",
				c.ID, c.Offset, c.Offset+c.Length, f.Name, f.Size)
		}
		if c.Length%int64(idx.RecordSize) != 0 {
			return fmt.Errorf("chunk %d: length %d not record-aligned", c.ID, c.Length)
		}
		if c.Units != c.Length/int64(idx.RecordSize) {
			return fmt.Errorf("chunk %d: unit count %d inconsistent", c.ID, c.Units)
		}
	}
	return nil
}

const indexMagic = 0x43424958 // "CBIX"
const indexVersion = 1

// WriteTo serializes the index in a compact binary format.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if err := write(int32(len(s))); err != nil {
			return err
		}
		_, err := cw.Write([]byte(s))
		return err
	}

	if err := write(uint32(indexMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(indexVersion)); err != nil {
		return cw.n, err
	}
	if err := write(idx.RecordSize); err != nil {
		return cw.n, err
	}
	if err := write(int32(len(idx.Files))); err != nil {
		return cw.n, err
	}
	for _, f := range idx.Files {
		if err := writeStr(f.Name); err != nil {
			return cw.n, err
		}
		if err := writeStr(f.Site); err != nil {
			return cw.n, err
		}
		if err := write(f.Size); err != nil {
			return cw.n, err
		}
	}
	if err := write(int32(len(idx.Chunks))); err != nil {
		return cw.n, err
	}
	for _, c := range idx.Chunks {
		if err := write(c); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// ReadIndex deserializes an index written by WriteTo and validates it.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	readStr := func() (string, error) {
		var n int32
		if err := read(&n); err != nil {
			return "", err
		}
		if n < 0 || n > 1<<20 {
			return "", fmt.Errorf("chunk: bad string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	var magic, version uint32
	if err := read(&magic); err != nil {
		return nil, err
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("chunk: bad index magic %#x", magic)
	}
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("chunk: unsupported index version %d", version)
	}
	idx := &Index{}
	if err := read(&idx.RecordSize); err != nil {
		return nil, err
	}
	var nFiles int32
	if err := read(&nFiles); err != nil {
		return nil, err
	}
	if nFiles < 0 || nFiles > 1<<20 {
		return nil, fmt.Errorf("chunk: bad file count %d", nFiles)
	}
	for i := int32(0); i < nFiles; i++ {
		var f FileMeta
		var err error
		if f.Name, err = readStr(); err != nil {
			return nil, err
		}
		if f.Site, err = readStr(); err != nil {
			return nil, err
		}
		if err = read(&f.Size); err != nil {
			return nil, err
		}
		idx.Files = append(idx.Files, f)
	}
	var nChunks int32
	if err := read(&nChunks); err != nil {
		return nil, err
	}
	if nChunks < 0 || nChunks > 1<<28 {
		return nil, fmt.Errorf("chunk: bad chunk count %d", nChunks)
	}
	idx.Chunks = make([]Chunk, nChunks)
	for i := range idx.Chunks {
		if err := read(&idx.Chunks[i]); err != nil {
			return nil, err
		}
	}
	if err := idx.Validate(); err != nil {
		return nil, err
	}
	return idx, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
