package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	for i := 0; i < 100; i++ {
		if d := p.Decide("local", "a.bin"); d.Kind != None {
			t.Fatalf("nil plan injected %v", d.Kind)
		}
	}
	if p.Total() != 0 {
		t.Fatal("nil plan counted injections")
	}
}

func TestFirstNPattern(t *testing.T) {
	p := NewPlan(1, Spec{Kind: Transient, FirstN: 3})
	var kinds []Kind
	for i := 0; i < 6; i++ {
		kinds = append(kinds, p.Decide("local", "a.bin").Kind)
	}
	want := []Kind{Transient, Transient, Transient, None, None, None}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("request %d: got %v want %v (all: %v)", i, kinds[i], k, kinds)
		}
	}
	// A different object has its own counter.
	if d := p.Decide("local", "b.bin"); d.Kind != Transient {
		t.Fatalf("fresh object skipped FirstN: %v", d.Kind)
	}
}

func TestSiteAndObjectFilters(t *testing.T) {
	p := NewPlan(2,
		Spec{Kind: SlowDown, Site: "cloud", FirstN: 1},
		Spec{Kind: Stall, Object: "big-", FirstN: 1, Stall: time.Second},
	)
	if d := p.Decide("local", "x.bin"); d.Kind != None {
		t.Fatalf("site filter leaked: %v", d.Kind)
	}
	if d := p.Decide("cloud", "x.bin"); d.Kind != SlowDown {
		t.Fatalf("cloud request not throttled: %v", d.Kind)
	}
	d := p.Decide("local", "big-00.bin")
	if d.Kind != Stall || d.Stall != time.Second {
		t.Fatalf("object-prefix stall not applied: %+v", d)
	}
}

func TestProbabilisticInjectionIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []Kind {
		p := NewPlan(seed, Spec{Kind: Transient, Prob: 0.3})
		var out []Kind
		for i := 0; i < 200; i++ {
			out = append(out, p.Decide("local", "a.bin").Kind)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	var faults int
	for _, k := range a {
		if k == Transient {
			faults++
		}
	}
	if faults < 30 || faults > 90 {
		t.Fatalf("prob 0.3 over 200 requests injected %d faults", faults)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDecideConcurrentTotalsDeterministic(t *testing.T) {
	// The total injected per key depends only on the number of
	// requests, not on which goroutine issues them.
	totals := func() int64 {
		p := NewPlan(9, Spec{Kind: Transient, Prob: 0.25})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					p.Decide("local", "a.bin")
				}
			}()
		}
		wg.Wait()
		return p.Total()
	}
	if a, b := totals(), totals(); a != b {
		t.Fatalf("concurrent totals diverged: %d vs %d", a, b)
	}
}

func TestRequestErrorClassification(t *testing.T) {
	err := RequestError(Decision{Kind: SlowDown}, "cloud", "a.bin")
	if !errors.Is(err, ErrSlowDown) {
		t.Fatalf("SlowDown error lost its sentinel: %v", err)
	}
	if !IsInjected(err) {
		t.Fatal("injected error not recognized")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("injected error not marked transient")
	}
	if RequestError(Decision{Kind: Stall}, "s", "o") != nil {
		t.Fatal("stall decisions must not produce an error")
	}
	if RequestError(Decision{}, "s", "o") != nil {
		t.Fatal("none decisions must not produce an error")
	}
}

func TestInjectedCounts(t *testing.T) {
	p := NewPlan(3,
		Spec{Kind: Transient, FirstN: 2},
		Spec{Kind: SlowDown, Site: "cloud", FirstN: 1},
	)
	p.Decide("local", "a") // transient (FirstN)
	p.Decide("local", "a") // transient (FirstN)
	p.Decide("local", "a") // none
	p.Decide("cloud", "b") // transient (first spec matches first)
	got := p.Injected()
	if got[Transient] != 3 {
		t.Fatalf("transient count = %d", got[Transient])
	}
	if p.Total() != 3 {
		t.Fatalf("total = %d", p.Total())
	}
}
