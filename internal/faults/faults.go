// Package faults provides a seeded, deterministic fault-injection plan
// for the storage and network layers. Real object stores throttle
// (S3's SlowDown), return transient errors, reset connections, and
// stall under load; a Plan reproduces those behaviours on demand so
// the retry/heartbeat machinery can be exercised — and any failing run
// replayed — from a single seed.
//
// A Plan is consulted at each injection point (SimS3 reads, the store
// wire server, shaped connections) with a (site, object) pair and
// answers with a Decision. Decisions depend only on the plan's seed,
// its specs, and a per-(site, object) request counter, so the multiset
// of faults a run experiences is reproducible regardless of goroutine
// scheduling.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// None is the zero Decision: no fault.
	None Kind = iota
	// Transient makes the request fail with a retryable error.
	Transient
	// Reset abruptly closes the underlying connection (wire-level
	// injection points only; stores treat it as Transient).
	Reset
	// Stall delays the request by the spec's Stall duration without
	// failing it — a read that hangs rather than errors.
	Stall
	// SlowDown makes the request fail with a throttle error, modeling
	// S3's 503 SlowDown responses under load.
	SlowDown

	kindCount
)

var kindNames = [kindCount]string{"none", "transient", "reset", "stall", "slowdown"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Spec describes one class of fault the plan injects.
type Spec struct {
	// Kind is the fault class.
	Kind Kind
	// Site restricts the spec to one site's injection points; empty
	// matches every site.
	Site string
	// Object restricts the spec to objects with this name prefix;
	// empty matches every object.
	Object string
	// FirstN fails the first N matching requests deterministically —
	// the "first N attempts fail" pattern retry tests are built on.
	FirstN int
	// Prob is the per-request fault probability applied after FirstN,
	// in [0, 1].
	Prob float64
	// Stall is how long a Stall fault delays the request (emulated
	// time; ignored by other kinds).
	Stall time.Duration
}

func (s Spec) matches(site, object string) bool {
	if s.Site != "" && s.Site != site {
		return false
	}
	if s.Object != "" && !strings.HasPrefix(object, s.Object) {
		return false
	}
	return true
}

// Decision is a Plan's answer for one request.
type Decision struct {
	Kind  Kind
	Stall time.Duration
}

// Plan is a reproducible fault schedule. A nil *Plan injects nothing,
// so injection points can hold one unconditionally.
type Plan struct {
	seed  uint64
	specs []Spec

	mu       sync.Mutex
	seen     map[string]uint64
	injected [kindCount]int64
}

// NewPlan builds a plan over the given specs. The same seed and specs
// always produce the same decision stream per (site, object) pair.
func NewPlan(seed int64, specs ...Spec) *Plan {
	return &Plan{
		seed:  splitmix64(uint64(seed) + 0x9e3779b97f4a7c15),
		specs: specs,
		seen:  make(map[string]uint64),
	}
}

// Decide consults the plan for one request against object at site.
// Specs are evaluated in order; the first that matches and fires wins.
func (p *Plan) Decide(site, object string) Decision {
	if p == nil || len(p.specs) == 0 {
		return Decision{}
	}
	key := site + "\x00" + object
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.seen[key]
	p.seen[key] = n + 1
	for i, s := range p.specs {
		if !s.matches(site, object) {
			continue
		}
		fire := n < uint64(s.FirstN)
		if !fire && s.Prob > 0 {
			h := splitmix64(p.seed ^ hashString(key) ^ (uint64(i+1) << 56) ^ (n * 0xbf58476d1ce4e5b9))
			fire = float64(h>>11)/float64(1<<53) < s.Prob
		}
		if fire {
			p.injected[s.Kind]++
			return Decision{Kind: s.Kind, Stall: s.Stall}
		}
	}
	return Decision{}
}

// Injected returns how many faults of each kind the plan has injected
// so far.
func (p *Plan) Injected() map[Kind]int64 {
	out := make(map[Kind]int64)
	if p == nil {
		return out
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, n := range p.injected {
		if n > 0 {
			out[Kind(k)] = n
		}
	}
	return out
}

// Total returns the total number of injected faults.
func (p *Plan) Total() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum int64
	for _, n := range p.injected {
		sum += n
	}
	return sum
}

// faultError is the error type behind every injected request failure.
// Its Transient method is the marker the store retry layer classifies
// on; the wire server flattens it to a string, so the message text is
// also a classification surface (see store.Retryable).
type faultError struct {
	msg string
}

func (e *faultError) Error() string   { return e.msg }
func (e *faultError) Transient() bool { return true }

// ErrTransient and ErrSlowDown are the sentinel injected errors;
// injection points wrap them with request context via %w.
var (
	ErrTransient = error(&faultError{"faults: injected transient error"})
	ErrSlowDown  = error(&faultError{"faults: SlowDown: request throttled"})
	ErrReset     = error(&faultError{"faults: injected connection reset"})
)

// RequestError converts a Decision into the error the faulted request
// should return, with site/object context. Stall and None return nil:
// they delay rather than fail.
func RequestError(d Decision, site, object string) error {
	switch d.Kind {
	case Transient:
		return fmt.Errorf("%w (site=%s object=%s)", ErrTransient, site, object)
	case SlowDown:
		return fmt.Errorf("%w (site=%s object=%s)", ErrSlowDown, site, object)
	case Reset:
		return fmt.Errorf("%w (site=%s object=%s)", ErrReset, site, object)
	default:
		return nil
	}
}

// IsInjected reports whether err originated from a Plan (directly, not
// across a wire round-trip).
func IsInjected(err error) bool {
	var fe *faultError
	return errors.As(err, &fe)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
