package faults

import (
	"fmt"
	"sort"
	"time"
)

// RevocationSpec describes a seeded schedule of spot-instance
// revocations against one site's burst workers. Real spot markets
// reclaim capacity either with a short warning (EC2's two-minute
// notice) or with none at all; the spec's WarnedFrac splits the trace
// between the two so both recovery paths — the accelerated drain and
// the checkpoint-backed re-execution — can be exercised from a single
// seed.
type RevocationSpec struct {
	// Site is the site whose revocable (spot) workers the trace kills.
	Site string
	// Count is the number of revocation events to generate.
	Count int
	// WarnedFrac is the fraction of events that carry a warning window,
	// in [0, 1]. The choice per event is deterministic in the seed.
	WarnedFrac float64
	// Warning is the emulated warning window warned events grant before
	// the hard kill (the spot market's revocation notice).
	Warning time.Duration
	// Start is the emulated elapsed time of the earliest possible
	// event; Spread is the window after Start the events scatter over.
	// A zero Spread puts every event exactly at Start.
	Start  time.Duration
	Spread time.Duration
}

// RevocationEvent is one scheduled revocation.
type RevocationEvent struct {
	// At is the emulated elapsed run time the revocation fires.
	At time.Duration
	// Warning is the emulated notice the victim gets before the hard
	// kill; zero means an unwarned kill.
	Warning time.Duration
}

// Warned reports whether the event grants a drain window.
func (e RevocationEvent) Warned() bool { return e.Warning > 0 }

// RevocationTrace is a materialized, time-sorted revocation schedule.
// Like a Plan, it is deterministic in (seed, spec): the same pair
// always yields the same storm, so a preemption scenario that broke a
// run can be replayed exactly.
type RevocationTrace struct {
	Site   string
	Events []RevocationEvent
}

// NewRevocationTrace materializes spec under seed. Event times are
// deterministic full-jitter samples over [Start, Start+Spread], sorted
// ascending; which events are warned is an independent deterministic
// draw against WarnedFrac.
func NewRevocationTrace(seed int64, spec RevocationSpec) *RevocationTrace {
	tr := &RevocationTrace{Site: spec.Site}
	if spec.Count <= 0 {
		return tr
	}
	base := splitmix64(uint64(seed)^hashString(spec.Site)) + 0x9e3779b97f4a7c15
	for i := 0; i < spec.Count; i++ {
		at := spec.Start
		if spec.Spread > 0 {
			h := splitmix64(base ^ (uint64(i+1) * 0xbf58476d1ce4e5b9))
			frac := float64(h>>11) / float64(1<<53)
			at += time.Duration(frac * float64(spec.Spread))
		}
		ev := RevocationEvent{At: at}
		h := splitmix64(base ^ (uint64(i+1) * 0x94d049bb133111eb) ^ 0xff)
		if float64(h>>11)/float64(1<<53) < spec.WarnedFrac {
			ev.Warning = spec.Warning
		}
		tr.Events = append(tr.Events, ev)
	}
	sort.Slice(tr.Events, func(a, b int) bool { return tr.Events[a].At < tr.Events[b].At })
	return tr
}

// Warned returns how many events in the trace carry a warning window.
func (t *RevocationTrace) Warned() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, e := range t.Events {
		if e.Warned() {
			n++
		}
	}
	return n
}

func (t *RevocationTrace) String() string {
	if t == nil || len(t.Events) == 0 {
		return "revocations: none"
	}
	return fmt.Sprintf("revocations[%s]: %d events (%d warned), first %v last %v",
		t.Site, len(t.Events), t.Warned(),
		t.Events[0].At.Round(time.Millisecond),
		t.Events[len(t.Events)-1].At.Round(time.Millisecond))
}
