package faults

import (
	"testing"
	"time"
)

func TestRevocationTraceDeterministic(t *testing.T) {
	spec := RevocationSpec{
		Site:       "cloud",
		Count:      8,
		WarnedFrac: 0.5,
		Warning:    2 * time.Second,
		Start:      10 * time.Second,
		Spread:     30 * time.Second,
	}
	a := NewRevocationTrace(42, spec)
	b := NewRevocationTrace(42, spec)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs across identical seeds: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := NewRevocationTrace(43, spec)
	same := len(c.Events) == len(a.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced an identical trace")
	}
}

func TestRevocationTraceSortedAndBounded(t *testing.T) {
	spec := RevocationSpec{
		Site:       "cloud",
		Count:      32,
		WarnedFrac: 0.25,
		Warning:    time.Second,
		Start:      5 * time.Second,
		Spread:     20 * time.Second,
	}
	tr := NewRevocationTrace(7, spec)
	if len(tr.Events) != spec.Count {
		t.Fatalf("got %d events, want %d", len(tr.Events), spec.Count)
	}
	prev := time.Duration(-1)
	for i, e := range tr.Events {
		if e.At < prev {
			t.Fatalf("event %d out of order: %v after %v", i, e.At, prev)
		}
		prev = e.At
		if e.At < spec.Start || e.At > spec.Start+spec.Spread {
			t.Fatalf("event %d at %v outside [%v, %v]", i, e.At, spec.Start, spec.Start+spec.Spread)
		}
		if e.Warned() && e.Warning != spec.Warning {
			t.Fatalf("warned event %d has window %v, want %v", i, e.Warning, spec.Warning)
		}
	}
	// The warned draw is Bernoulli(WarnedFrac) per event; with 32
	// events at 0.25 the count landing at the extremes would mean the
	// hash is badly skewed.
	if w := tr.Warned(); w == 0 || w == spec.Count {
		t.Fatalf("warned count %d of %d is degenerate for frac %v", w, spec.Count, spec.WarnedFrac)
	}
}

func TestRevocationTraceEdgeCases(t *testing.T) {
	if tr := NewRevocationTrace(1, RevocationSpec{Site: "cloud"}); len(tr.Events) != 0 {
		t.Fatalf("zero count produced %d events", len(tr.Events))
	}
	tr := NewRevocationTrace(1, RevocationSpec{Site: "cloud", Count: 3, Start: 4 * time.Second})
	for _, e := range tr.Events {
		if e.At != 4*time.Second {
			t.Fatalf("zero spread event at %v, want exactly 4s", e.At)
		}
		if e.Warned() {
			t.Fatalf("zero WarnedFrac produced a warned event")
		}
	}
	all := NewRevocationTrace(1, RevocationSpec{Site: "cloud", Count: 5, WarnedFrac: 1, Warning: time.Second})
	if all.Warned() != 5 {
		t.Fatalf("WarnedFrac=1 warned %d of 5", all.Warned())
	}
	var nilTrace *RevocationTrace
	if nilTrace.Warned() != 0 {
		t.Fatalf("nil trace Warned() != 0")
	}
}
