package mapreduce

import (
	"testing"

	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

// BenchmarkEngines compares the three engines of the Figure 1 argument
// on the same word-count workload: generalized reduction vs Map-Reduce
// with and without a combiner.
func BenchmarkEngines(b *testing.B) {
	gen := workload.Words{Width: 12, Vocab: 2000, Seed: 6}
	chunks := genChunks(gen, 200_000, 8)
	var total int64
	for _, c := range chunks {
		total += int64(len(c))
	}

	b.Run("generalized-reduction", func(b *testing.B) {
		app, err := gr.New("wordcount", map[string]string{"width": "12", "cost": "0s"})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			e := gr.NewEngine(app, gr.EngineOptions{})
			red := app.NewReduction()
			for _, c := range chunks {
				if _, err := e.ProcessChunk(red, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("map-reduce", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			if _, err := Run(WordCountJob(12, false), chunks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-reduce-combine", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			if _, err := Run(WordCountJob(12, true), chunks); err != nil {
				b.Fatal(err)
			}
		}
	})
}
