// Package mapreduce is the baseline the paper's generalized-reduction
// API argues against (Section III-A, Figure 1): a classic in-process
// map/shuffle/reduce engine, with and without a Combine function.
//
// The engine instruments exactly the quantities the paper's argument
// rests on: how many intermediate (key, value) pairs are materialized,
// the peak number buffered at once, and how many survive into the
// shuffle. Generalized reduction folds map+combine+reduce into an
// in-place update, so its "intermediate state" is a single reduction
// object per worker; Map-Reduce without a combiner buffers one pair
// per input record, and with a combiner it still materializes every
// pair before folding buffer flushes.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Pair is one intermediate (key, value) record. Values are float64
// vectors, which covers the evaluation applications (counts, point
// coordinates, rank contributions).
type Pair struct {
	Key   string
	Value []float64
}

// MapFunc turns one input record into zero or more intermediate pairs.
type MapFunc func(record []byte, emit func(key string, value []float64)) error

// ReduceFunc folds all values for one key into a single value. It is
// also the type of the optional Combine function.
type ReduceFunc func(key string, values [][]float64) ([]float64, error)

// Config describes one Map-Reduce job.
type Config struct {
	// RecordSize is the fixed input record length.
	RecordSize int
	// Map and Reduce are required; Combine is optional.
	Map     MapFunc
	Reduce  ReduceFunc
	Combine ReduceFunc
	// Workers is the map-phase parallelism (default 4).
	Workers int
	// Reducers is the number of shuffle partitions (default Workers).
	Reducers int
	// FlushThreshold is how many buffered pairs trigger a combiner
	// flush on a map worker (default 4096). Ignored without Combine.
	FlushThreshold int
}

// Stats quantifies the intermediate-state behaviour Figure 1 is about.
type Stats struct {
	// PairsEmitted counts every pair produced by Map.
	PairsEmitted int64
	// PeakBuffered is the maximum number of pairs held in map-side
	// buffers at any instant, across all workers.
	PeakBuffered int64
	// PairsShuffled is how many pairs crossed the shuffle (post
	// combine, if any) — the inter-node traffic proxy.
	PairsShuffled int64
	// ApproxBufferedBytes estimates the peak buffered pair memory.
	ApproxBufferedBytes int64
}

// Result is the final reduced key -> value map plus the run's stats.
type Result struct {
	Values map[string][]float64
	Stats  Stats
}

// Run executes the job over the chunks (each chunk is a byte slice of
// whole records).
func Run(cfg Config, chunks [][]byte) (*Result, error) {
	if cfg.Map == nil || cfg.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: Map and Reduce are required")
	}
	if cfg.RecordSize <= 0 {
		return nil, fmt.Errorf("mapreduce: record size must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.Reducers < 1 {
		cfg.Reducers = cfg.Workers
	}
	if cfg.FlushThreshold < 1 {
		cfg.FlushThreshold = 4096
	}

	var (
		emitted  atomic.Int64
		buffered atomic.Int64 // currently buffered pairs across workers
		peak     atomic.Int64
		shuffled atomic.Int64
	)
	notePeak := func(delta int64) {
		now := buffered.Add(delta)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
	}

	// Shuffle partitions, guarded per-partition.
	parts := make([]map[string][][]float64, cfg.Reducers)
	var partMu []sync.Mutex
	for i := range parts {
		parts[i] = make(map[string][][]float64)
	}
	partMu = make([]sync.Mutex, cfg.Reducers)

	partition := func(key string) int {
		h := fnv.New32a()
		h.Write([]byte(key))
		return int(h.Sum32() % uint32(cfg.Reducers))
	}

	// sendToShuffle moves one pair into its partition.
	sendToShuffle := func(key string, value []float64) {
		p := partition(key)
		partMu[p].Lock()
		parts[p][key] = append(parts[p][key], value)
		partMu[p].Unlock()
		shuffled.Add(1)
	}

	// Map phase.
	work := make(chan []byte, cfg.Workers)
	errc := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker buffer of emitted pairs.
			buf := make(map[string][][]float64)
			bufN := 0

			flush := func() error {
				if bufN == 0 {
					return nil
				}
				for key, values := range buf {
					if cfg.Combine != nil {
						v, err := cfg.Combine(key, values)
						if err != nil {
							return err
						}
						sendToShuffle(key, v)
					} else {
						for _, v := range values {
							sendToShuffle(key, v)
						}
					}
					delete(buf, key)
				}
				notePeak(int64(-bufN))
				bufN = 0
				return nil
			}

			for chunk := range work {
				if len(chunk)%cfg.RecordSize != 0 {
					errc <- fmt.Errorf("mapreduce: chunk of %d bytes not record-aligned", len(chunk))
					return
				}
				for off := 0; off < len(chunk); off += cfg.RecordSize {
					err := cfg.Map(chunk[off:off+cfg.RecordSize], func(key string, value []float64) {
						buf[key] = append(buf[key], value)
						bufN++
						emitted.Add(1)
						notePeak(1)
					})
					if err != nil {
						errc <- err
						return
					}
					if cfg.Combine != nil && bufN >= cfg.FlushThreshold {
						if err := flush(); err != nil {
							errc <- err
							return
						}
					}
				}
				// Without a combiner, pairs are buffered until the map
				// task ends (one chunk = one map task), then shuffled.
				if cfg.Combine == nil {
					if err := flush(); err != nil {
						errc <- err
						return
					}
				}
			}
			if err := flush(); err != nil {
				errc <- err
			}
		}()
	}
	for _, chunk := range chunks {
		work <- chunk
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	// Reduce phase: one goroutine per partition.
	out := make([]map[string][]float64, cfg.Reducers)
	for p := 0; p < cfg.Reducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res := make(map[string][]float64, len(parts[p]))
			// Deterministic order for reproducible error reporting.
			keys := make([]string, 0, len(parts[p]))
			for k := range parts[p] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v, err := cfg.Reduce(k, parts[p][k])
				if err != nil {
					errc <- err
					return
				}
				res[k] = v
			}
			out[p] = res
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	final := make(map[string][]float64)
	for _, m := range out {
		for k, v := range m {
			final[k] = v
		}
	}
	return &Result{
		Values: final,
		Stats: Stats{
			PairsEmitted:        emitted.Load(),
			PeakBuffered:        peak.Load(),
			PairsShuffled:       shuffled.Load(),
			ApproxBufferedBytes: peak.Load() * 24, // pair header estimate
		},
	}, nil
}
