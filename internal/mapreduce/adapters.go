package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"cloudburst/internal/apps"
)

// This file adapts the evaluation applications to the Map-Reduce API,
// so the Figure 1 ablation can run the same workload through both
// engines and compare intermediate-state behaviour and results.

// WordCountJob builds a Map-Reduce job equivalent to apps.WordCount.
func WordCountJob(width int, combine bool) Config {
	cfg := Config{
		RecordSize: width,
		Map: func(record []byte, emit func(string, []float64)) error {
			word := string(bytes.TrimRight(record, " "))
			if word != "" {
				emit(word, []float64{1})
			}
			return nil
		},
		Reduce: sumReduce,
	}
	if combine {
		cfg.Combine = sumReduce
	}
	return cfg
}

func sumReduce(key string, values [][]float64) ([]float64, error) {
	var sum float64
	for _, v := range values {
		if len(v) != 1 {
			return nil, fmt.Errorf("mapreduce: word count value of width %d", len(v))
		}
		sum += v[0]
	}
	return []float64{sum}, nil
}

// KMeansJob builds a Map-Reduce job equivalent to one apps.KMeans
// iteration: map assigns each point to its nearest centroid and emits
// (centroid, [coords..., 1]); reduce sums the vectors, yielding
// per-cluster coordinate sums and counts.
func KMeansJob(app *apps.KMeans, combine bool) Config {
	dims := app.Dims
	cfg := Config{
		RecordSize: app.RecordSize(),
		Map: func(record []byte, emit func(string, []float64)) error {
			c := app.Assign(record)
			v := make([]float64, dims+1)
			for d := 0; d < dims; d++ {
				v[d] = float64(math.Float32frombits(binary.LittleEndian.Uint32(record[4*d:])))
			}
			v[dims] = 1
			emit(fmt.Sprintf("c%04d", c), v)
			return nil
		},
		Reduce: vectorSumReduce(dims + 1),
	}
	if combine {
		cfg.Combine = vectorSumReduce(dims + 1)
	}
	return cfg
}

func vectorSumReduce(n int) ReduceFunc {
	return func(key string, values [][]float64) ([]float64, error) {
		sum := make([]float64, n)
		for _, v := range values {
			if len(v) != n {
				return nil, fmt.Errorf("mapreduce: vector width %d, want %d", len(v), n)
			}
			for i, x := range v {
				sum[i] += x
			}
		}
		return sum, nil
	}
}

// KNNJob builds a Map-Reduce knn job: every point maps to the single
// key "knn" carrying (distance, id); reduce keeps the k smallest. This
// is the structurally worst case for Map-Reduce — every record's pair
// survives to the shuffle unless a combiner prunes — which is why the
// paper's knn benefits most from generalized reduction.
func KNNJob(app *apps.KNN, combine bool) Config {
	topK := func(key string, values [][]float64) ([]float64, error) {
		// Values are flattened (dist, id) pairs; keep the k nearest.
		type cand struct{ dist, id float64 }
		var all []cand
		for _, v := range values {
			if len(v)%2 != 0 {
				return nil, fmt.Errorf("mapreduce: knn value of odd width %d", len(v))
			}
			for i := 0; i < len(v); i += 2 {
				all = append(all, cand{v[i], v[i+1]})
			}
		}
		// Selection by simple sort (values lists are modest after
		// combining).
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && (all[j].dist < all[j-1].dist ||
				(all[j].dist == all[j-1].dist && all[j].id < all[j-1].id)); j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		if len(all) > app.K {
			all = all[:app.K]
		}
		out := make([]float64, 0, 2*len(all))
		for _, c := range all {
			out = append(out, c.dist, c.id)
		}
		return out, nil
	}
	cfg := Config{
		RecordSize: app.RecordSize(),
		Map: func(record []byte, emit func(string, []float64)) error {
			id := float64(binary.LittleEndian.Uint64(record[:8]))
			emit("knn", []float64{app.Distance(record), id})
			return nil
		},
		Reduce: topK,
	}
	if combine {
		cfg.Combine = topK
	}
	return cfg
}
