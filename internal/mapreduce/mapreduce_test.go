package mapreduce

import (
	"fmt"
	"math"
	"testing"

	"cloudburst/internal/apps"
	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

func genChunks(gen workload.Generator, records int64, chunks int) [][]byte {
	rs := int64(gen.RecordSize())
	per := records / int64(chunks)
	out := make([][]byte, 0, chunks)
	var idx int64
	for c := 0; c < chunks; c++ {
		n := per
		if c == chunks-1 {
			n = records - idx
		}
		buf := make([]byte, n*rs)
		for i := int64(0); i < n; i++ {
			gen.Gen(idx+i, buf[i*rs:(i+1)*rs])
		}
		idx += n
		out = append(out, buf)
	}
	return out
}

func TestWordCountWithAndWithoutCombiner(t *testing.T) {
	gen := workload.Words{Width: 12, Vocab: 30, Seed: 8}
	chunks := genChunks(gen, 5000, 8)

	want := make(map[string]float64)
	for i := int64(0); i < 5000; i++ {
		want[gen.Word(gen.WordAt(i))]++
	}

	for _, combine := range []bool{false, true} {
		res, err := Run(WordCountJob(12, combine), chunks)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != len(want) {
			t.Fatalf("combine=%v: %d keys, want %d", combine, len(res.Values), len(want))
		}
		for k, v := range want {
			if res.Values[k][0] != v {
				t.Fatalf("combine=%v: %q = %v, want %v", combine, k, res.Values[k][0], v)
			}
		}
		if res.Stats.PairsEmitted != 5000 {
			t.Fatalf("combine=%v: emitted %d", combine, res.Stats.PairsEmitted)
		}
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	gen := workload.Words{Width: 12, Vocab: 20, Seed: 3}
	chunks := genChunks(gen, 10_000, 4)

	plain, err := Run(WordCountJob(12, false), chunks)
	if err != nil {
		t.Fatal(err)
	}
	combinedCfg := WordCountJob(12, true)
	combinedCfg.FlushThreshold = 512 // periodic buffer flush (the paper's model)
	combined, err := Run(combinedCfg, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Stats.PairsShuffled >= plain.Stats.PairsShuffled {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combined.Stats.PairsShuffled, plain.Stats.PairsShuffled)
	}
	// Without a combiner every pair of a map task is buffered; with a
	// flush threshold the peak is bounded near the threshold.
	if combined.Stats.PeakBuffered > plain.Stats.PeakBuffered {
		t.Fatalf("combiner increased peak buffer: %d vs %d",
			combined.Stats.PeakBuffered, plain.Stats.PeakBuffered)
	}
}

func TestKMeansMRMatchesGR(t *testing.T) {
	app, err := apps.NewKMeans(apps.Params{"k": "6", "dims": "2"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 2, Seed: 44}
	chunks := genChunks(gen, 3000, 5)

	mr, err := Run(KMeansJob(app, true), chunks)
	if err != nil {
		t.Fatal(err)
	}

	// GR reference.
	engine := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	for _, c := range chunks {
		if _, err := engine.ProcessChunk(red, c); err != nil {
			t.Fatal(err)
		}
	}
	type kmCounter interface{ Counts() []int64 }
	counts := red.(kmCounter).Counts()

	var mrTotal float64
	for c := 0; c < app.K; c++ {
		key := fmt.Sprintf("c%04d", c)
		v, ok := mr.Values[key]
		if !ok {
			if counts[c] != 0 {
				t.Fatalf("cluster %d missing from MR but GR counted %d", c, counts[c])
			}
			continue
		}
		if int64(v[app.Dims]) != counts[c] {
			t.Fatalf("cluster %d: MR count %v, GR count %d", c, v[app.Dims], counts[c])
		}
		mrTotal += v[app.Dims]
	}
	if mrTotal != 3000 {
		t.Fatalf("MR total points %v", mrTotal)
	}
}

func TestKNNMRMatchesGR(t *testing.T) {
	app, err := apps.NewKNN(apps.Params{"k": "15", "dims": "2"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 2, Seed: 12, WithID: true}
	chunks := genChunks(gen, 2000, 4)

	mr, err := Run(KNNJob(app, true), chunks)
	if err != nil {
		t.Fatal(err)
	}
	got := mr.Values["knn"]
	if len(got) != 2*15 {
		t.Fatalf("knn result width %d", len(got))
	}

	engine := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	for _, c := range chunks {
		engine.ProcessChunk(red, c)
	}
	type neighborer interface{ Neighbors() []gr.Scored }
	ref := red.(neighborer).Neighbors()
	for i, n := range ref {
		if math.Abs(got[2*i]-n.Score) > 1e-12 {
			t.Fatalf("neighbor %d: MR dist %v, GR dist %v", i, got[2*i], n.Score)
		}
	}
}

func TestKNNCombinerPrunesShuffle(t *testing.T) {
	app, _ := apps.NewKNN(apps.Params{"k": "10", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 5, WithID: true}
	chunks := genChunks(gen, 4000, 4)

	plain, err := Run(KNNJob(app, false), chunks)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(KNNJob(app, true), chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Without combining, all 4000 pairs hit the single-key shuffle.
	if plain.Stats.PairsShuffled != 4000 {
		t.Fatalf("plain shuffle = %d", plain.Stats.PairsShuffled)
	}
	if pruned.Stats.PairsShuffled >= plain.Stats.PairsShuffled/2 {
		t.Fatalf("combiner barely pruned: %d", pruned.Stats.PairsShuffled)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("missing Map/Reduce accepted")
	}
	cfg := WordCountJob(12, false)
	cfg.RecordSize = 0
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("zero record size accepted")
	}
	cfg = WordCountJob(12, false)
	if _, err := Run(cfg, [][]byte{make([]byte, 13)}); err == nil {
		t.Fatal("misaligned chunk accepted")
	}
}

func TestRunPropagatesMapError(t *testing.T) {
	cfg := Config{
		RecordSize: 4,
		Map: func(record []byte, emit func(string, []float64)) error {
			return fmt.Errorf("map boom")
		},
		Reduce: sumReduce,
	}
	if _, err := Run(cfg, [][]byte{make([]byte, 16)}); err == nil {
		t.Fatal("map error swallowed")
	}
}

func TestRunPropagatesReduceError(t *testing.T) {
	cfg := Config{
		RecordSize: 4,
		Map: func(record []byte, emit func(string, []float64)) error {
			emit("k", []float64{1})
			return nil
		},
		Reduce: func(key string, values [][]float64) ([]float64, error) {
			return nil, fmt.Errorf("reduce boom")
		},
	}
	if _, err := Run(cfg, [][]byte{make([]byte, 16)}); err == nil {
		t.Fatal("reduce error swallowed")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(WordCountJob(12, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || res.Stats.PairsEmitted != 0 {
		t.Fatalf("empty input produced %+v", res)
	}
}
